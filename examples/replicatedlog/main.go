// Replicated log: a fault-tolerant key-value store replicated over five
// processes with package core — the paper's ◇C detector + ◇C consensus run
// once per log slot. Commands submitted at different replicas are applied in
// the same order everywhere, across a leader crash.
//
// Run with:
//
//	go run ./examples/replicatedlog
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dsys"
	"repro/internal/network"
	"repro/internal/sim"
)

// setCmd is the state-machine command: KV[Key] = Val.
type setCmd struct {
	Key string
	Val int
}

func main() {
	const n = 5
	k := sim.New(sim.Config{
		N:       n,
		Network: network.PartiallySynchronous{GST: 50 * time.Millisecond, Delta: 5 * time.Millisecond},
		Seed:    11,
	})

	replicas := make(map[dsys.ProcessID]*core.Replica, n)
	stores := make(map[dsys.ProcessID]map[string]int, n)
	for _, id := range dsys.Pids(n) {
		id := id
		stores[id] = map[string]int{}
		k.Spawn(id, "kv", func(p dsys.Proc) {
			// No SeqBase/Incarnation: a simulated replica has exactly one
			// life, even across the in-kernel crash below — the crash ends
			// the process for good rather than restarting it. Restartable
			// embeddings (cmd/ecnode) must stamp both per incarnation; see
			// core.Config.
			replicas[id] = core.StartReplica(p, core.Config{
				Apply: func(slot int, cmd core.Command) {
					c := cmd.Payload.(setCmd)
					stores[id][c.Key] = c.Val
				},
				// Throughput knobs, set here to the defaults they'd get
				// anyway: a slot carries up to MaxBatch commands from one
				// origin (one consensus round commits the whole batch) and
				// up to Pipeline consecutive slots run concurrently, with
				// decisions applied strictly in slot order. Apply still
				// fires once per command, so the state machine is
				// batching-oblivious. 1/1 restores one-command-per-round
				// sequential commits; see E17 for what the knobs buy.
				MaxBatch: 64,
				Pipeline: 4,
			})
		})
	}

	// Clients submit at different replicas, concurrently, including to the
	// soon-to-crash initial leader p1.
	k.ScheduleFunc(80*time.Millisecond, func(time.Duration) {
		replicas[1].Submit(setCmd{"x", 1})
		replicas[3].Submit(setCmd{"y", 3})
		replicas[5].Submit(setCmd{"z", 5})
	})
	k.CrashAt(1, 120*time.Millisecond) // kill the leader mid-stream
	k.ScheduleFunc(400*time.Millisecond, func(time.Duration) {
		replicas[2].Submit(setCmd{"x", 42}) // overwrite after recovery
		replicas[4].Submit(setCmd{"w", 4})
	})
	k.Run(5 * time.Second)

	fmt.Println("replicatedlog: KV store over core.Replica (leader p1 crashes at 120ms)")
	for _, id := range dsys.Pids(n) {
		if k.Crashed(id) {
			fmt.Printf("  %v: crashed\n", id)
			continue
		}
		fmt.Printf("  %v: log =", id)
		for _, e := range replicas[id].Applied() {
			c := e.Cmd.Payload.(setCmd)
			fmt.Printf(" [slot %d: %s=%d from %v]", e.Slot, c.Key, c.Val, e.Cmd.Origin)
		}
		fmt.Println()
	}
	// Show the final state machine of one survivor.
	keys := make([]string, 0, len(stores[2]))
	for key := range stores[2] {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	fmt.Printf("  final state at p2: ")
	for _, key := range keys {
		fmt.Printf("%s=%d ", key, stores[2][key])
	}
	fmt.Println()
}
