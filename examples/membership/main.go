// Membership: a group-membership service (totally ordered views) over the
// paper's stack. Crashes and a voluntary departure are turned into agreed
// view changes; every surviving process installs the identical view
// sequence. Group communication systems are the application domain the
// paper's introduction points at.
//
// Run with:
//
//	go run ./examples/membership
package main

import (
	"fmt"
	"time"

	"repro/internal/dsys"
	"repro/internal/member"
	"repro/internal/network"
	"repro/internal/sim"
)

func main() {
	const n = 6
	k := sim.New(sim.Config{
		N:       n,
		Network: network.PartiallySynchronous{GST: 30 * time.Millisecond, Delta: 5 * time.Millisecond},
		Seed:    17,
	})
	svcs := make(map[dsys.ProcessID]*member.Service, n)
	for _, id := range dsys.Pids(n) {
		id := id
		k.Spawn(id, "member", func(p dsys.Proc) {
			svcs[id] = member.Start(p, member.Config{
				OnView: func(v member.View) {
					if id == 1 {
						fmt.Printf("  t=%-8v p1 installs view %d: %v\n", p.Now().Round(time.Millisecond), v.ID, v.Members)
					}
				},
			})
		})
	}

	fmt.Println("membership: agreed views over ◇C consensus")
	fmt.Printf("  initial view 1: %v\n", dsys.Pids(n))
	k.CrashAt(4, 200*time.Millisecond)
	k.ScheduleFunc(600*time.Millisecond, func(time.Duration) {
		fmt.Println("  >>> p6 leaves voluntarily")
		svcs[6].Leave()
	})
	k.CrashAt(2, time.Second)
	k.Run(4 * time.Second)

	fmt.Println("\n  final histories:")
	for _, id := range []dsys.ProcessID{1, 3, 5} {
		fmt.Printf("    %v:", id)
		for _, v := range svcs[id].History() {
			fmt.Printf(" %d%v", v.ID, v.Members)
		}
		fmt.Println()
	}
}
