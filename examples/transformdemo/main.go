// Transform demo: watch the paper's Fig. 2 algorithm turn a ◇C detector
// into ◇P under the exact link assumptions of Theorem 1 — only the leader's
// input links are timely and its output links drop 40% of all messages, yet
// every process's suspect list converges to exactly the crashed set.
//
// Run with:
//
//	go run ./examples/transformdemo
package main

import (
	"fmt"
	"time"

	"repro/internal/dsys"
	"repro/internal/fd/fdtest"
	"repro/internal/fd/transform"
	"repro/internal/network"
	"repro/internal/sim"
)

func main() {
	const n = 6
	const leader = dsys.ProcessID(1)

	// Theorem 1's minimal link assumptions: partially synchronous links
	// into the leader, fair-lossy (40% drop) links out of it, and slow,
	// 70%-lossy links everywhere else.
	ps := network.PartiallySynchronous{GST: 0, Delta: 10 * time.Millisecond}
	links := map[network.LinkKey]network.Network{}
	for _, q := range dsys.Pids(n) {
		if q == leader {
			continue
		}
		links[network.LinkKey{From: q, To: leader}] = ps
		links[network.LinkKey{From: leader, To: q}] = network.FairLossy{P: 0.4, Under: ps}
	}
	net := network.PerLink{
		Default: network.FairLossy{P: 0.7, Under: network.Reliable{Latency: network.Uniform{Min: time.Millisecond, Max: 100 * time.Millisecond}}},
		Links:   links,
	}

	k := sim.New(sim.Config{N: n, Network: net, Seed: 5})
	dets := make([]*transform.Detector, n+1)
	for _, id := range dsys.Pids(n) {
		id := id
		k.Spawn(id, "tp", func(p dsys.Proc) {
			// The underlying ◇C detector is scripted to already agree on
			// the leader, isolating the transformation's own behaviour.
			dets[id] = transform.Start(p, fdtest.NewScripted(leader), transform.Options{})
		})
	}

	fmt.Println("transformdemo: ◇C→◇P (Fig. 2) with 40% loss on the leader's output links")
	fmt.Println("  p3 crashes at 150ms, p5 at 400ms; watch the lists converge:")
	k.CrashAt(3, 150*time.Millisecond)
	k.CrashAt(5, 400*time.Millisecond)

	k.Every(100*time.Millisecond, 100*time.Millisecond, func(now time.Duration) {
		if now > 900*time.Millisecond {
			return
		}
		fmt.Printf("  t=%-6v", now)
		for _, id := range dsys.Pids(n) {
			if k.Crashed(id) {
				fmt.Printf("  %v:†", id)
				continue
			}
			fmt.Printf("  %v:%v", id, dets[id].Suspected())
		}
		fmt.Println()
	})
	k.Run(time.Second)

	fmt.Println("\n  final leader-side stats:")
	fmt.Printf("    false suspicions retracted by Task 4 at the leader: %d\n", dets[leader].FalseSuspicions())
	fmt.Printf("    suspect lists adopted (Task 5) at p2: %d\n", dets[2].Adoptions())
}
