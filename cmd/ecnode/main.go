// Command ecnode is one node of a real multi-process cluster: it loads a
// JSON config file (id, peer addresses, detector choice, consensus role),
// joins the TCP mesh in single-process mode, runs the paper's stack — a ◇C
// failure detector, reliable broadcast, and the replicated log driven by ◇C
// consensus — and serves client proposals on a separate port.
//
// Usage:
//
//	ecnode -config node1.json
//
// Config file (see internal/cluster.NodeConfig):
//
//	{
//	  "id": 1,
//	  "n": 5,
//	  "peers": {"1": "127.0.0.1:7101", "2": "127.0.0.1:7102", ...},
//	  "client_addr": "127.0.0.1:7201",
//	  "detector": "ring",          // or "heartbeat"
//	  "role": "replica",           // or "monitor" (detector only)
//	  "heartbeat_transport": "tcp", // or "udp": detector beats as datagrams
//	  "period_ms": 10
//	}
//
// With "heartbeat_transport": "udp" the node binds a datagram socket on the
// same host:port as its TCP mesh listener (the port spaces are disjoint) and
// routes only the detector's periodic kinds over it; consensus, broadcast
// and log transfer stay on TCP. Lost heartbeats are then genuinely lost —
// the fair-lossy model the paper's detectors assume — instead of being
// retransmitted behind the detector's back.
//
// The client protocol is newline-delimited JSON (internal/cluster.Request/
// Response): {"op":"propose","value":"..."} blocks until the value commits
// and returns its slot; {"op":"status"} reports the detector's leader and
// suspect set plus the applied count; {"op":"log"} returns the applied
// payloads in slot order.
//
// SIGINT/SIGTERM shut the node down cleanly via Mesh.Stop — sockets closed,
// writers terminated, tasks unwound. A SIGKILL (what experiment E16 injects)
// is the paper's crash model: no goodbye, survivors must detect it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dsys"
	"repro/internal/fd"
	"repro/internal/fd/ec"
	"repro/internal/fd/heartbeat"
	"repro/internal/fd/ring"
	"repro/internal/tcpnet"
	"repro/internal/udpnet"
)

// proposeWait bounds how long a propose request may wait for its commit
// before the node answers with an error (the client can retry; the command
// stays queued and will still be ordered).
const proposeWait = 30 * time.Second

func main() {
	cfgPath := flag.String("config", "", "path to the JSON node config (required)")
	flag.Parse()
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "ecnode: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := cluster.LoadNodeConfig(*cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecnode: %v\n", err)
		os.Exit(1)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ecnode: %v\n", err)
		os.Exit(1)
	}
}

// node is the shared state between the protocol tasks (running on the mesh)
// and the client-serving goroutines.
type node struct {
	cfg   cluster.NodeConfig
	start time.Time
	udp   *udpnet.Transport // nil unless heartbeat_transport is "udp"

	mu      sync.Mutex
	det     fd.EventuallyConsistent
	rep     *core.Replica
	waiters map[int64]chan int // pending proposals: seq -> committed slot
}

// detectorKinds lists the message kinds the configured detector emits
// periodically — the loss-tolerant traffic that may ride a datagram
// transport. Everything else (consensus, broadcast, log transfer) needs
// reliable delivery and stays on TCP.
func detectorKinds(detector string) []string {
	if detector == cluster.DetectorHeartbeat {
		return []string{heartbeat.KindAlive}
	}
	return []string{ring.KindBeat, ring.KindWatch}
}

func run(cfg cluster.NodeConfig) error {
	meshCfg := tcpnet.Config{
		N:     cfg.N,
		Self:  cfg.Self(),
		Bind:  cfg.MeshAddr(),
		Peers: cfg.PeerAddrs(),
	}
	var udp *udpnet.Transport
	if cfg.HeartbeatTransport == cluster.TransportUDP {
		// The datagram socket binds the same host:port as the TCP listener —
		// the port spaces are disjoint, so one address book serves both.
		var err error
		udp, err = udpnet.NewTransport(udpnet.Config{
			N:     cfg.N,
			Self:  cfg.Self(),
			Bind:  cfg.MeshAddr(),
			Peers: cfg.PeerAddrs(),
		})
		if err != nil {
			return fmt.Errorf("udp transport: %w", err)
		}
		meshCfg.Datagram = udp
		meshCfg.DatagramKinds = detectorKinds(cfg.Detector)
	}
	mesh, err := tcpnet.New(meshCfg)
	if err != nil {
		if udp != nil {
			udp.Stop()
		}
		return err
	}
	defer mesh.Stop()
	ln, err := net.Listen("tcp", cfg.ClientAddr)
	if err != nil {
		return fmt.Errorf("client listen %q: %w", cfg.ClientAddr, err)
	}
	defer ln.Close()

	nd := &node{cfg: cfg, start: time.Now(), udp: udp, waiters: make(map[int64]chan int)}
	ready := make(chan struct{})
	mesh.Spawn(cfg.Self(), "node", func(p dsys.Proc) {
		period := time.Duration(cfg.PeriodMS) * time.Millisecond
		var det fd.EventuallyConsistent
		if cfg.Detector == cluster.DetectorHeartbeat {
			det = ec.FromPerfect{S: heartbeat.Start(p, heartbeat.Options{Period: period}), N: cfg.N}
		} else {
			det = ring.Start(p, ring.Options{Period: period})
		}
		var rep *core.Replica
		if cfg.Role != cluster.RoleMonitor {
			rep = core.StartReplica(p, core.Config{
				Detector:  det,
				Consensus: consensus.Options{Poll: 2 * time.Millisecond, ProbeAfter: 25},
				Apply:     nd.onApply,
				// A restarted node must not reuse the (Origin, Seq) identities
				// of its previous incarnation; a nanosecond timestamp keys
				// each incarnation's sequence space apart. SeqBase and Seq
				// are int64 so the timestamp survives 32-bit platforms
				// untruncated (truncation would recreate the collision). The
				// same stamp keys the reliable-broadcast life apart: without
				// it, peers dedup the new life's decision broadcasts against
				// the old life's sequence numbers and drop them all, so every
				// decision a restarted coordinator makes reaches followers
				// only via a probe timeout — a persistent post-restart
				// throughput collapse (E16's leader-kill phase).
				SeqBase:     time.Now().UnixNano(),
				Incarnation: time.Now().UnixNano(),
				// Throughput knobs (0 = core defaults; 1/1 = unbatched,
				// sequential baseline — what E17's comparison cells use).
				MaxBatch: cfg.MaxBatch,
				Pipeline: cfg.Pipeline,
			})
		}
		nd.mu.Lock()
		nd.det, nd.rep = det, rep
		nd.mu.Unlock()
		close(ready)
		for {
			p.Sleep(time.Hour)
		}
	})
	<-ready
	go acceptClients(ln, nd)
	fmt.Printf("ecnode %v: mesh on %s, clients on %s, detector=%s role=%s transport=%s n=%d\n",
		cfg.Self(), mesh.Addr(cfg.Self()), cfg.ClientAddr, cfg.Detector, cfg.Role, cfg.HeartbeatTransport, cfg.N)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("ecnode %v: %v, shutting down\n", cfg.Self(), s)
	return nil // deferred ln.Close + mesh.Stop do the teardown
}

// onApply runs on the replica task for every decided command; it completes
// the waiter of a locally submitted proposal.
func (n *node) onApply(slot int, cmd core.Command) {
	if cmd.Origin != n.cfg.Self() {
		return
	}
	n.mu.Lock()
	ch := n.waiters[cmd.Seq]
	delete(n.waiters, cmd.Seq)
	n.mu.Unlock()
	if ch != nil {
		ch <- slot // buffered; never blocks the replica task
	}
}

func acceptClients(ln net.Listener, nd *node) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		go serveConn(conn, nd)
	}
}

// serveConn handles one client connection: newline-delimited JSON requests,
// answered in order.
func serveConn(conn net.Conn, nd *node) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return
		}
		var req cluster.Request
		resp := cluster.Response{}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = fmt.Sprintf("bad request: %v", err)
		} else {
			resp = nd.handle(req)
		}
		data, err := json.Marshal(resp)
		if err != nil {
			data, _ = json.Marshal(cluster.Response{Error: "unencodable response"})
		}
		if _, err := conn.Write(append(data, '\n')); err != nil {
			return
		}
	}
}

func (n *node) handle(req cluster.Request) cluster.Response {
	switch req.Op {
	case "propose":
		return n.propose(req.Value)
	case "status":
		return n.status()
	case "log":
		return n.logEntries()
	default:
		return cluster.Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

func (n *node) propose(value string) cluster.Response {
	n.mu.Lock()
	rep := n.rep
	if rep == nil {
		n.mu.Unlock()
		return cluster.Response{Error: "node is a monitor; it does not serve proposals"}
	}
	// Register the waiter under the same lock the apply callback takes, so
	// a commit racing ahead of the registration cannot slip past it.
	cmd := rep.Submit(value)
	ch := make(chan int, 1)
	n.waiters[cmd.Seq] = ch
	n.mu.Unlock()
	select {
	case slot := <-ch:
		return cluster.Response{OK: true, Slot: slot}
	case <-time.After(proposeWait):
		n.mu.Lock()
		delete(n.waiters, cmd.Seq)
		n.mu.Unlock()
		return cluster.Response{Error: "timed out waiting for commit"}
	}
}

func (n *node) status() cluster.Response {
	n.mu.Lock()
	det, rep := n.det, n.rep
	n.mu.Unlock()
	resp := cluster.Response{
		OK:        true,
		ID:        n.cfg.ID,
		N:         n.cfg.N,
		Role:      n.cfg.Role,
		Detector:  n.cfg.Detector,
		Leader:    int(det.Trusted()),
		UptimeMS:  time.Since(n.start).Milliseconds(),
		Transport: n.cfg.HeartbeatTransport,
	}
	if n.udp != nil {
		sent, rcvd, _ := n.udp.Stats()
		resp.UDPOut, resp.UDPIn = sent, rcvd
	}
	for _, id := range det.Suspected().Members() {
		resp.Suspected = append(resp.Suspected, int(id))
	}
	if rep != nil {
		resp.Applied = len(rep.Applied())
	}
	return resp
}

func (n *node) logEntries() cluster.Response {
	n.mu.Lock()
	rep := n.rep
	n.mu.Unlock()
	if rep == nil {
		return cluster.Response{Error: "node is a monitor; it has no log"}
	}
	values := rep.AppliedValues()
	entries := make([]string, len(values))
	for i, v := range values {
		entries[i] = fmt.Sprint(v)
	}
	return cluster.Response{OK: true, Entries: entries}
}
