package main

import (
	"testing"
	"time"
)

func TestPaceIntervalClampsExtremeRates(t *testing.T) {
	cases := []struct {
		rate int
		want time.Duration
	}{
		{1, time.Second},
		{100, 10 * time.Millisecond},
		{1e9, time.Nanosecond},
		{2e9, time.Nanosecond},       // 1s/rate truncates to 0: must clamp, not panic
		{int(3e18), time.Nanosecond}, // far beyond any duration resolution
	}
	for _, c := range cases {
		if got := paceInterval(c.rate); got != c.want {
			t.Errorf("paceInterval(%d) = %v, want %v", c.rate, got, c.want)
		}
		// The clamped interval must be accepted by time.NewTicker (a zero
		// interval panics — the original bug).
		tick := time.NewTicker(paceInterval(c.rate))
		tick.Stop()
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	one := []time.Duration{5 * time.Millisecond}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := percentile(one, p); got != 5*time.Millisecond {
			t.Errorf("percentile(single, %v) = %v, want the sample", p, got)
		}
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.5); got != 6 {
		t.Errorf("p50 of 1..10 = %v, want 6 (nearest rank)", got)
	}
	if got := percentile(sorted, 0.99); got != 10 {
		t.Errorf("p99 of 1..10 = %v, want 10", got)
	}
	if got := percentile(sorted, 1); got != 10 {
		t.Errorf("p100 must clamp to the last sample, got %v", got)
	}
}
