package main

import (
	"reflect"
	"testing"
	"time"
)

func TestPaceIntervalClampsExtremeRates(t *testing.T) {
	cases := []struct {
		rate int
		want time.Duration
	}{
		{1, time.Second},
		{100, 10 * time.Millisecond},
		{1e9, time.Nanosecond},
		{2e9, time.Nanosecond},       // 1s/rate truncates to 0: must clamp, not panic
		{int(3e18), time.Nanosecond}, // far beyond any duration resolution
	}
	for _, c := range cases {
		if got := paceInterval(c.rate); got != c.want {
			t.Errorf("paceInterval(%d) = %v, want %v", c.rate, got, c.want)
		}
		// The clamped interval must be accepted by time.NewTicker (a zero
		// interval panics — the original bug).
		tick := time.NewTicker(paceInterval(c.rate))
		tick.Stop()
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}
	one := []time.Duration{5 * time.Millisecond}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := percentile(one, p); got != 5*time.Millisecond {
			t.Errorf("percentile(single, %v) = %v, want the sample", p, got)
		}
	}
	sorted := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.5); got != 6 {
		t.Errorf("p50 of 1..10 = %v, want 6 (nearest rank)", got)
	}
	if got := percentile(sorted, 0.99); got != 10 {
		t.Errorf("p99 of 1..10 = %v, want 10", got)
	}
	if got := percentile(sorted, 1); got != 10 {
		t.Errorf("p100 must clamp to the last sample, got %v", got)
	}
}

// TestTimelineKeepsPartialFinalSecond pins the timeline fix: ops counted in
// the bucket at index ceil(wall) — the partial final second, reachable when
// the wall clock rounds to a whole second — must not be sliced off the
// reported series.
func TestTimelineKeepsPartialFinalSecond(t *testing.T) {
	cases := []struct {
		name    string
		buckets []int64
		wall    time.Duration
		want    []int
	}{
		{"mid-second wall", []int64{5, 7, 3, 0, 0}, 2500 * time.Millisecond, []int{5, 7, 3}},
		// The original bug: wall lands on a whole second and the final
		// bucket's ops vanish from the series.
		{"whole-second wall with trailing ops", []int64{5, 7, 3, 1, 0}, 3 * time.Second, []int{5, 7, 3, 1}},
		{"trailing zeros trimmed", []int64{5, 7, 0, 0, 0}, 1800 * time.Millisecond, []int{5, 7}},
		{"empty run", []int64{0, 0, 0}, 900 * time.Millisecond, []int{0}},
		{"never exceeds bucket count", []int64{1, 1}, 5 * time.Second, []int{1, 1}},
	}
	for _, c := range cases {
		if got := timeline(c.buckets, c.wall); !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: timeline(%v, %v) = %v, want %v", c.name, c.buckets, c.wall, got, c.want)
		}
	}
}
