// Command ecload drives sustained client traffic at a cluster of ecnode
// processes and reports committed throughput and latency percentiles. Each
// worker owns one node connection (workers round-robin over the given
// addresses), proposes unique values in a closed loop — optionally paced by
// a global rate cap — and redials with a short pause when its node dies, so
// a kill/restart shows up as a throughput dip, not a crashed client.
//
// Usage:
//
//	ecload -addrs 127.0.0.1:7201,127.0.0.1:7202 [-duration 10s] [-conc 4]
//	       [-rate 0] [-timeout 5s] [-p999] [-json report.json]
//
// Latency is measured per command: each propose carries one command and its
// sample is the full submit-to-applied round trip, so the percentiles stay
// per-command commit latencies even when the server batches many commands
// into one consensus slot. -p999 adds a p99.9 column to the human summary
// (the JSON report always carries it — tail latency is where batching
// trade-offs show first).
//
// The human-readable summary goes to stdout; -json additionally writes the
// machine-readable cluster.LoadReport ("-" writes it to stdout instead of
// the summary). Exit status 1 means the run committed nothing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

func main() {
	addrsFlag := flag.String("addrs", "", "comma-separated ecnode client addresses (required)")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	conc := flag.Int("conc", 4, "concurrent workers")
	rate := flag.Int("rate", 0, "total ops/s cap across all workers (0 = closed loop)")
	opTimeout := flag.Duration("timeout", 5*time.Second, "per-operation timeout")
	p999 := flag.Bool("p999", false, "add a p99.9 column to the latency summary")
	jsonOut := flag.String("json", "", "write the JSON report to this file ('-' = stdout)")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*addrsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "ecload: -addrs is required")
		flag.Usage()
		os.Exit(2)
	}
	if *conc < 1 || *duration <= 0 || *rate < 0 {
		fmt.Fprintln(os.Stderr, "ecload: -conc must be >= 1, -duration > 0, -rate >= 0")
		os.Exit(2)
	}

	rep := drive(addrs, *duration, *conc, *rate, *opTimeout)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			data = append(data, '\n')
			if *jsonOut == "-" {
				os.Stdout.Write(data)
			} else {
				err = os.WriteFile(*jsonOut, data, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecload: write report: %v\n", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "-" {
		fmt.Printf("ecload: %d nodes, %d workers, %v\n", len(addrs), rep.Workers, *duration)
		fmt.Printf("  committed  %d ops (%.1f ops/s), %d errors\n", rep.Committed, rep.OpsPerSec, rep.Errors)
		if *p999 {
			fmt.Printf("  latency    p50 %.1fms  p95 %.1fms  p99 %.1fms  p99.9 %.1fms\n", rep.P50MS, rep.P95MS, rep.P99MS, rep.P999MS)
		} else {
			fmt.Printf("  latency    p50 %.1fms  p95 %.1fms  p99 %.1fms\n", rep.P50MS, rep.P95MS, rep.P99MS)
		}
		fmt.Printf("  per-second %v\n", rep.PerSecond)
	}
	if rep.Committed == 0 {
		fmt.Fprintln(os.Stderr, "ecload: no operation ever committed")
		os.Exit(1)
	}
}

// drive runs the load and assembles the report.
func drive(addrs []string, duration time.Duration, conc, rate int, opTimeout time.Duration) cluster.LoadReport {
	var (
		committed atomic.Int64
		errors    atomic.Int64
		// A worker may start an op just before the deadline and finish it up
		// to opTimeout later, so the timeline can outlive the nominal
		// duration by that much.
		buckets   = make([]int64, int((duration+opTimeout).Seconds())+2)
		latencies = make([][]time.Duration, conc)
	)
	// Global pacing: one token per 1/rate second, shared by every worker.
	// Closed loop (rate 0) runs without tokens.
	var tokens chan struct{}
	stop := make(chan struct{})
	if rate > 0 {
		tokens = make(chan struct{}, rate)
		tick := time.NewTicker(paceInterval(rate))
		defer tick.Stop()
		go func() {
			for {
				select {
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // bucket full; shed the token
					}
				case <-stop:
					return
				}
			}
		}()
	}

	// Unique value prefix so reruns and restarts never collide in the log.
	prefix := fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano())
	start := time.Now()
	deadline := start.Add(duration)
	time.AfterFunc(duration, func() { close(stop) })

	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			addr := addrs[w%len(addrs)]
			var c *cluster.Client
			defer func() {
				if c != nil {
					c.Close()
				}
			}()
			for seq := 0; time.Now().Before(deadline); seq++ {
				if tokens != nil {
					select {
					case <-tokens:
					case <-stop:
						return
					}
				}
				if c == nil {
					var err error
					if c, err = cluster.DialClient(addr, opTimeout); err != nil {
						errors.Add(1)
						sleepOrStop(stop, 50*time.Millisecond)
						continue
					}
				}
				t0 := time.Now()
				resp, err := c.Do(cluster.Request{
					Op:    "propose",
					Value: fmt.Sprintf("%s-w%d-%d", prefix, w, seq),
				}, opTimeout)
				if err != nil || !resp.OK {
					errors.Add(1)
					c.Close()
					c = nil
					sleepOrStop(stop, 20*time.Millisecond)
					continue
				}
				latencies[w] = append(latencies[w], time.Since(t0))
				committed.Add(1)
				if idx := int(time.Since(start).Seconds()); idx >= 0 && idx < len(buckets) {
					atomic.AddInt64(&buckets[idx], 1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep := cluster.LoadReport{
		Addrs:      addrs,
		Workers:    conc,
		Rate:       rate,
		DurationMS: wall.Milliseconds(),
		Committed:  int(committed.Load()),
		Errors:     int(errors.Load()),
		PerSecond:  timeline(buckets, wall),
	}
	if wall > 0 {
		rep.OpsPerSec = float64(rep.Committed) / wall.Seconds()
	}
	if len(all) > 0 {
		rep.P50MS = ms(percentile(all, 0.50))
		rep.P95MS = ms(percentile(all, 0.95))
		rep.P99MS = ms(percentile(all, 0.99))
		rep.P999MS = ms(percentile(all, 0.999))
	}
	return rep
}

// timeline trims the completion-time buckets to the reported per-second
// series. Sizing it by ceil(wall) alone drops the partial final second when
// the wall clock lands on (or a completion rounds down to) the last bucket
// boundary, so the series extends to the last bucket that actually counted
// an op.
func timeline(buckets []int64, wall time.Duration) []int {
	n := int(math.Ceil(wall.Seconds()))
	for i, b := range buckets {
		if b != 0 && i+1 > n {
			n = i + 1
		}
	}
	if n > len(buckets) {
		n = len(buckets)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(buckets[i])
	}
	return out
}

func sleepOrStop(stop <-chan struct{}, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-stop:
	}
}

// paceInterval converts a total ops/s cap into the token-ticker interval.
// Rates above 1e9 would truncate to a zero interval — which panics
// time.NewTicker — so the interval is clamped to 1ns (effectively unpaced;
// no hardware sustains sub-nanosecond issue anyway).
func paceInterval(rate int) time.Duration {
	iv := time.Second / time.Duration(rate)
	if iv <= 0 {
		iv = time.Nanosecond
	}
	return iv
}

// percentile returns the p-quantile of sorted latencies (nearest rank); 0
// when there are no samples.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
