// Command fdsim runs one failure-detector scenario on the deterministic
// simulator and reports which class properties the recorded trace satisfies,
// plus message-cost statistics.
//
// Usage:
//
//	fdsim -detector ring -n 6 -crash 2@300ms,5@600ms -gst 200ms -delta 10ms -for 4s
//
// Detectors: heartbeat (◇P), ring (◇C), leaderbeat (Ω), stable (stable Ω), gossip (Ω over
// heartbeat), transform (◇C→◇P over ring, Fig. 2), piggyback (transform
// riding LeaderBeat beacons).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/check"
	"repro/internal/dsys"
	"repro/internal/fd"
	"repro/internal/fd/fdlab"
	"repro/internal/fd/heartbeat"
	"repro/internal/fd/omega"
	"repro/internal/fd/ring"
	"repro/internal/fd/transform"
	"repro/internal/network"
)

type fdPair struct {
	fd.Suspector
	fd.LeaderOracle
}

func main() {
	detector := flag.String("detector", "ring", "heartbeat | ring | leaderbeat | stable | gossip | transform | piggyback")
	n := flag.Int("n", 5, "number of processes")
	seed := flag.Int64("seed", 1, "random seed")
	gst := flag.Duration("gst", 100*time.Millisecond, "global stabilization time")
	delta := flag.Duration("delta", 10*time.Millisecond, "post-GST latency bound Δ")
	crash := flag.String("crash", "", "crash schedule, e.g. 2@300ms,5@600ms")
	runFor := flag.Duration("for", 4*time.Second, "virtual run duration")
	period := flag.Duration("period", 10*time.Millisecond, "heartbeat period")
	flag.Parse()

	crashes, err := parseCrashes(*crash, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	build, err := builder(*detector, *period)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res := fdlab.Run(fdlab.Setup{
		N:       *n,
		Seed:    *seed,
		Net:     network.PartiallySynchronous{GST: *gst, Delta: *delta},
		Crashes: crashes,
		Build:   build,
		RunFor:  *runFor,
	})

	fmt.Printf("detector=%s n=%d seed=%d gst=%v delta=%v run=%v crashes=%v\n\n",
		*detector, *n, *seed, *gst, *delta, res.End, *crash)
	tr := res.Trace
	show := func(name string, v check.Verdict) {
		state := "does NOT hold"
		if v.Holds {
			state = fmt.Sprintf("holds from %v", v.From)
			if v.Witness != dsys.None {
				state += fmt.Sprintf(" (witness %v)", v.Witness)
			}
		}
		fmt.Printf("  %-28s %s\n", name, state)
	}
	show("strong completeness", tr.StrongCompleteness())
	show("weak completeness", tr.WeakCompleteness())
	show("eventual strong accuracy", tr.EventualStrongAccuracy())
	show("eventual weak accuracy", tr.EventualWeakAccuracy())
	show("omega (eventual leader)", tr.OmegaProperty())
	show("◇C consistency", tr.ECConsistency())
	fmt.Println()
	show("class ◇P", tr.EventuallyPerfect())
	show("class ◇S", tr.EventuallyStrong())
	show("class ◇C", tr.EventuallyConsistent())
	fmt.Println()
	q := tr.QoS()
	fmt.Println("quality of service:")
	if q.WorstDetection < 0 {
		fmt.Println("  crash detection: some crash never detected")
	} else {
		fmt.Printf("  crash detection: worst %v, avg %v\n", q.WorstDetection, q.AvgDetection)
	}
	fmt.Printf("  false-suspicion episodes: %d (avg duration %v)\n", q.Mistakes, q.AvgMistakeDuration)
	fmt.Println()
	fmt.Println("message counts by kind:")
	for _, k := range res.Messages.Kinds() {
		fmt.Printf("  %-20s sent %6d  delivered %6d  dropped %5d\n",
			k, res.Messages.Sent(k), res.Messages.Delivered(k), res.Messages.Dropped(k))
	}
}

func builder(kind string, period time.Duration) (func(p dsys.Proc) any, error) {
	switch kind {
	case "heartbeat":
		return func(p dsys.Proc) any { return heartbeat.Start(p, heartbeat.Options{Period: period}) }, nil
	case "ring":
		return func(p dsys.Proc) any { return ring.Start(p, ring.Options{Period: period}) }, nil
	case "leaderbeat":
		return func(p dsys.Proc) any { return omega.StartLeaderBeat(p, omega.Options{Period: period}) }, nil
	case "stable":
		return func(p dsys.Proc) any { return omega.StartStable(p, omega.Options{Period: period}) }, nil
	case "gossip":
		return func(p dsys.Proc) any {
			hb := heartbeat.Start(p, heartbeat.Options{Period: period})
			return omega.StartFromSuspector(p, hb, omega.Options{Period: period})
		}, nil
	case "transform":
		return func(p dsys.Proc) any {
			r := ring.Start(p, ring.Options{Period: period})
			return fdPair{Suspector: transform.Start(p, r, transform.Options{Period: period}), LeaderOracle: r}
		}, nil
	case "piggyback":
		return func(p dsys.Proc) any {
			om := omega.StartLeaderBeat(p, omega.Options{Period: period})
			return fdPair{Suspector: transform.Start(p, om, transform.Options{Period: period, Piggyback: om}), LeaderOracle: om}
		}, nil
	default:
		return nil, fmt.Errorf("unknown detector %q", kind)
	}
}

func parseCrashes(s string, n int) (map[dsys.ProcessID]time.Duration, error) {
	out := map[dsys.ProcessID]time.Duration{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		var id int
		var at string
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d@%s", &id, &at); err != nil {
			return nil, fmt.Errorf("bad crash spec %q (want id@duration)", part)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("bad crash time in %q: %v", part, err)
		}
		if id < 1 || id > n {
			return nil, fmt.Errorf("crash id %d out of range 1..%d", id, n)
		}
		out[dsys.ProcessID(id)] = d
	}
	return out, nil
}
