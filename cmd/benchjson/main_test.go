package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkKernelTimerThroughput-4  \t 3\t 168305392 ns/op\t 0.02750 allocs/event\t 2430000 events/s\t 4625045 B/op\t 63973 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if b.Name != "BenchmarkKernelTimerThroughput" {
		t.Errorf("name = %q; GOMAXPROCS suffix not stripped", b.Name)
	}
	if b.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", b.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 168305392, "allocs/event": 0.0275, "events/s": 2430000,
		"B/op": 4625045, "allocs/op": 63973,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-4 notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-result line parsed as benchmark: %q", line)
		}
	}
}

func TestRunEmitsDocument(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkA-8    100    50 ns/op    7 B/op    1 allocs/op
BenchmarkB      200    25 ns/op
PASS
`)
	var out strings.Builder
	if _, err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`"BenchmarkA"`, `"BenchmarkB"`, `"ns/op": 50`, `"iterations": 200`} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %s:\n%s", want, got)
		}
	}
}

func mkDoc(entries map[string]map[string]float64) document {
	var d document
	for name, m := range entries {
		d.Benchmarks = append(d.Benchmarks, benchmark{Name: name, Iterations: 1, Metrics: m})
	}
	return d
}

func TestGate(t *testing.T) {
	base := mkDoc(map[string]map[string]float64{
		"BenchmarkSend":  {"allocs/event": 0.03, "events/s": 4e6},
		"BenchmarkTimer": {"allocs/event": 0.024},
		"BenchmarkOther": {"ns/op": 100}, // no gated metric: never checked
	})

	t.Run("pass within ratio", func(t *testing.T) {
		cur := mkDoc(map[string]map[string]float64{
			"BenchmarkSend":  {"allocs/event": 0.044},
			"BenchmarkTimer": {"allocs/event": 0.01},
		})
		if bad := gate(cur, base, "allocs/event", 1.5); len(bad) != 0 {
			t.Errorf("expected pass, got violations: %v", bad)
		}
	})

	t.Run("fail beyond ratio", func(t *testing.T) {
		cur := mkDoc(map[string]map[string]float64{
			"BenchmarkSend":  {"allocs/event": 0.046},
			"BenchmarkTimer": {"allocs/event": 0.024},
		})
		bad := gate(cur, base, "allocs/event", 1.5)
		if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkSend") {
			t.Errorf("expected one BenchmarkSend violation, got %v", bad)
		}
	})

	t.Run("missing benchmark fails", func(t *testing.T) {
		cur := mkDoc(map[string]map[string]float64{
			"BenchmarkSend": {"allocs/event": 0.03},
		})
		bad := gate(cur, base, "allocs/event", 1.5)
		if len(bad) != 1 || !strings.Contains(bad[0], "BenchmarkTimer") {
			t.Errorf("expected missing-BenchmarkTimer violation, got %v", bad)
		}
	})

	t.Run("near-zero baseline uses absolute floor", func(t *testing.T) {
		zbase := mkDoc(map[string]map[string]float64{"BenchmarkZ": {"allocs/event": 0}})
		ok := mkDoc(map[string]map[string]float64{"BenchmarkZ": {"allocs/event": 0.009}})
		if bad := gate(ok, zbase, "allocs/event", 1.5); len(bad) != 0 {
			t.Errorf("value under the floor should pass a zero baseline, got %v", bad)
		}
		over := mkDoc(map[string]map[string]float64{"BenchmarkZ": {"allocs/event": 0.5}})
		if bad := gate(over, zbase, "allocs/event", 1.5); len(bad) != 1 {
			t.Errorf("value over the floor should fail a zero baseline, got %v", bad)
		}
	})
}
