package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkKernelTimerThroughput-4  \t 3\t 168305392 ns/op\t 0.02750 allocs/event\t 2430000 events/s\t 4625045 B/op\t 63973 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if b.Name != "BenchmarkKernelTimerThroughput" {
		t.Errorf("name = %q; GOMAXPROCS suffix not stripped", b.Name)
	}
	if b.Iterations != 3 {
		t.Errorf("iterations = %d, want 3", b.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op": 168305392, "allocs/event": 0.0275, "events/s": 2430000,
		"B/op": 4625045, "allocs/op": 63973,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-4 notanumber ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-result line parsed as benchmark: %q", line)
		}
	}
}

func TestRunEmitsDocument(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkA-8    100    50 ns/op    7 B/op    1 allocs/op
BenchmarkB      200    25 ns/op
PASS
`)
	var out strings.Builder
	if err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{`"BenchmarkA"`, `"BenchmarkB"`, `"ns/op": 50`, `"iterations": 200`} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %s:\n%s", want, got)
		}
	}
}
