// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark numbers can be committed as baselines (BENCH_PR3.json)
// and diffed across revisions or CI runs without scraping free-form text.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem ./... | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench_output.txt
//
// Every `Benchmark...` result line becomes one entry: the name (GOMAXPROCS
// suffix stripped), the iteration count, and a metrics map of every
// value/unit pair on the line — ns/op, B/op, allocs/op and any custom
// b.ReportMetric units such as events/s or allocs/event.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkKernelPingPong-4   300   4123456 ns/op   1845000 events/s   16 B/op   2 allocs/op
//
// returning ok=false for non-benchmark lines (headers, PASS/ok, logs).
func parseLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // not a value/unit pair; stop at trailing annotations
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func run(in io.Reader, out io.Writer) error {
	doc := document{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func main() {
	outPath := flag.String("o", "", "write JSON to this file instead of stdout")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
