// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark numbers can be committed as baselines (BENCH_PR3.json)
// and diffed across revisions or CI runs without scraping free-form text.
//
// Usage:
//
//	go test -run '^$' -bench=. -benchmem ./... | benchjson -o BENCH.json
//	benchjson -o BENCH.json bench_output.txt
//	benchjson -gate BENCH_PR10.json -metric allocs/event -max-ratio 1.5 bench_output.txt
//
// Every `Benchmark...` result line becomes one entry: the name (GOMAXPROCS
// suffix stripped), the iteration count, and a metrics map of every
// value/unit pair on the line — ns/op, B/op, allocs/op and any custom
// b.ReportMetric units such as events/s or allocs/event.
//
// With -gate, the parsed run is additionally compared against a committed
// baseline document: every baseline benchmark carrying the gated metric must
// appear in the current run with its value at or below -max-ratio times the
// baseline value (a small absolute floor forgives quantization around
// near-zero baselines). Any regression — or a gated benchmark missing from
// the run — exits 1 and lists the violations. The gate is meant for
// machine-independent metrics such as allocs/event: allocation counts are
// stable across hosts, so CI can enforce them without a calibrated runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkKernelPingPong-4   300   4123456 ns/op   1845000 events/s   16 B/op   2 allocs/op
//
// returning ok=false for non-benchmark lines (headers, PASS/ok, logs).
func parseLine(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break // not a value/unit pair; stop at trailing annotations
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func parse(in io.Reader) (document, error) {
	doc := document{Benchmarks: []benchmark{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	return doc, sc.Err()
}

func run(in io.Reader, out io.Writer) (document, error) {
	doc, err := parse(in)
	if err != nil {
		return doc, err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return doc, enc.Encode(doc)
}

// gateFloor is the absolute ceiling floor for gated metrics: a baseline of
// (near) zero would otherwise make any nonzero measurement a failure, so the
// ceiling never drops below this.
const gateFloor = 0.01

// gate checks every baseline benchmark carrying the metric against the
// current run and returns the list of violations (empty = pass).
func gate(cur, base document, metric string, maxRatio float64) []string {
	curBy := make(map[string]benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	var bad []string
	for _, bb := range base.Benchmarks {
		bv, ok := bb.Metrics[metric]
		if !ok {
			continue
		}
		cb, ok := curBy[bb.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: gated on %q in the baseline but missing from the current run", bb.Name, metric))
			continue
		}
		cv, ok := cb.Metrics[metric]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: current run has no %q metric (baseline %g)", bb.Name, metric, bv))
			continue
		}
		ceil := maxRatio * bv
		if ceil < gateFloor {
			ceil = gateFloor
		}
		if cv > ceil {
			bad = append(bad, fmt.Sprintf("%s: %s %g exceeds %g (%.2fx the baseline %g, allowed %.2fx)",
				bb.Name, metric, cv, ceil, cv/bv, bv, maxRatio))
		}
	}
	return bad
}

func main() {
	outPath := flag.String("o", "", "write JSON to this file instead of stdout")
	gatePath := flag.String("gate", "", "baseline JSON to gate against: exit 1 if the -metric of any gated benchmark regresses past -max-ratio times its baseline")
	gateMetric := flag.String("metric", "allocs/event", "metric to gate on with -gate")
	maxRatio := flag.Float64("max-ratio", 1.5, "allowed current/baseline ratio for the gated metric")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	doc, err := run(in, out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *gatePath != "" {
		raw, err := os.ReadFile(*gatePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var base document
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", *gatePath, err)
			os.Exit(1)
		}
		if bad := gate(doc, base, *gateMetric, *maxRatio); len(bad) > 0 {
			for _, line := range bad {
				fmt.Fprintln(os.Stderr, "benchjson: GATE FAIL:", line)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: gate ok: %q within %.2fx of %s for all gated benchmarks\n", *gateMetric, *maxRatio, *gatePath)
	}
}
