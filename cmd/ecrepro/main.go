// Command ecrepro regenerates the paper's experiments (see DESIGN.md and
// EXPERIMENTS.md) and prints one table per experiment. It exits non-zero if
// any experiment's qualitative shape fails to match the paper.
//
// Usage:
//
//	ecrepro [-quick] [-only E3,E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expt"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E5); default all")
	flag.Parse()

	type entry struct {
		id string
		fn func(bool) (*expt.Table, error)
	}
	entries := []entry{
		{"E1", expt.E1ClassProperties},
		{"E2", expt.E2TransformCorrectness},
		{"E3", expt.E3MessagesPerPeriod},
		{"E4", expt.E4DetectionLatency},
		{"E5", expt.E5RoundCosts},
		{"E6", expt.E6RoundsAfterStability},
		{"E7", expt.E7NackTolerance},
		{"E8", expt.E8MergedPhaseTradeoff},
		{"E9", expt.E9AllSelfTrust},
		{"E10", expt.E10ConsensusSoak},
		{"E11", expt.E11StabilityWindow},
		{"E12", expt.E12DetectorQoS},
		{"E13", expt.E13MeshChaos},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failed := false
	for _, e := range entries {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		tb, err := e.fn(*quick)
		tb.Fprint(os.Stdout)
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "SHAPE MISMATCH %s: %v\n", e.id, err)
		}
	}
	if failed {
		os.Exit(1)
	}
}
