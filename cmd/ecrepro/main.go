// Command ecrepro regenerates the paper's experiments (see DESIGN.md and
// EXPERIMENTS.md) and prints one table per experiment. It exits non-zero if
// any experiment's qualitative shape fails to match the paper, or with status
// 2 on usage errors such as an unknown -only id.
//
// Trials inside each experiment fan across -parallel worker goroutines (one
// private sim.Kernel per trial), which changes wall-clock time only: the
// tables on stdout are byte-identical for every -parallel value. Timing
// diagnostics (per-experiment wall-clock, simulator events, events/sec) go to
// stderr so stdout stays comparable across runs.
//
// Usage:
//
//	ecrepro [-quick] [-only E3,E5] [-parallel N] [-n N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/trace"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E3,E5); default all")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker goroutines per experiment (1 = sequential); tables are identical for every value")
	nOverride := flag.Int("n", 0, "override the E14 scaling sweep's process counts with a single n (the Θ(n²) heartbeat still only runs at n ≤ 256)")
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintf(os.Stderr, "ecrepro: -parallel must be at least 1 (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	expt.SetParallelism(*parallel)
	nSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "n" {
			nSet = true
		}
	})
	if nSet {
		if *nOverride < 1 {
			fmt.Fprintf(os.Stderr, "ecrepro: -n must be at least 1 (got %d)\n", *nOverride)
			flag.Usage()
			os.Exit(2)
		}
		expt.SetE14Sizes(*nOverride)
	}
	experiments := expt.Experiments()

	valid := make(map[string]bool, len(experiments))
	var ids []string
	for _, e := range experiments {
		valid[e.ID] = true
		ids = append(ids, e.ID)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if id == "" {
				continue
			}
			if !valid[id] {
				fmt.Fprintf(os.Stderr, "ecrepro: unknown experiment id %q; valid ids: %s\n", id, strings.Join(ids, ", "))
				os.Exit(2)
			}
			want[id] = true
		}
		if len(want) == 0 {
			fmt.Fprintf(os.Stderr, "ecrepro: -only selected no experiments; valid ids: %s\n", strings.Join(ids, ", "))
			os.Exit(2)
		}
	}

	timings := &trace.Collector{}
	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		tb, err := expt.RunTimed(e, *quick, timings)
		tb.Fprint(os.Stdout)
		ts := timings.Timings()
		fmt.Fprintln(os.Stderr, timingLine(ts[len(ts)-1]))
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "SHAPE MISMATCH %s: %v\n", e.ID, err)
		}
	}
	fmt.Fprintln(os.Stderr, totalLine(timings.Timings()))
	if failed {
		os.Exit(1)
	}
}

func timingLine(t trace.Timing) string {
	return fmt.Sprintf("timing %-5s wall=%-10v events=%-9d %s  (parallel=%d)",
		t.ID, t.Wall.Round(100*time.Microsecond), t.Events, rateCell(t.EventsPerSec()), t.Parallel)
}

func totalLine(ts []trace.Timing) string {
	var total trace.Timing
	total.ID = "total"
	for _, t := range ts {
		total.Wall += t.Wall
		total.Events += t.Events
		total.Parallel = t.Parallel
	}
	return timingLine(total)
}

func rateCell(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%6.2fM events/s", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%6.1fk events/s", r/1e3)
	default:
		return fmt.Sprintf("%6.0f events/s", r)
	}
}
