// Command consensussim runs one Uniform Consensus scenario per algorithm on
// the deterministic simulator and reports decisions, rounds and message
// costs side by side.
//
// Usage:
//
//	consensussim -n 5 -crash 1@15ms -gst 50ms -delta 5ms -algos cec,ctc,mrc
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/consensus"
	"repro/internal/consensus/cec"
	"repro/internal/consensus/conslab"
	"repro/internal/consensus/ctc"
	"repro/internal/consensus/mrc"
	"repro/internal/dsys"
	"repro/internal/fd/heartbeat"
	"repro/internal/fd/omega"
	"repro/internal/fd/ring"
	"repro/internal/network"
	"repro/internal/rbcast"
)

func main() {
	n := flag.Int("n", 5, "number of processes")
	seed := flag.Int64("seed", 1, "random seed")
	gst := flag.Duration("gst", 50*time.Millisecond, "global stabilization time")
	delta := flag.Duration("delta", 5*time.Millisecond, "post-GST latency bound Δ")
	crash := flag.String("crash", "", "crash schedule, e.g. 1@15ms,4@40ms")
	algos := flag.String("algos", "cec,ctc,mrc", "algorithms to run (cec = ◇C paper, ctc = Chandra–Toueg ◇S, mrc = MR-style Ω)")
	loss := flag.Float64("loss", 0, "fair-lossy drop probability on every link (0..1)")
	dup := flag.Float64("dup", 0, "duplication probability per extra copy (0..1)")
	runFor := flag.Duration("for", 30*time.Second, "virtual horizon")
	flag.Parse()

	crashes, err := parseCrashes(*crash, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("n=%d seed=%d gst=%v delta=%v crashes=%q  (f_max=%d)\n\n", *n, *seed, *gst, *delta, *crash, dsys.MaxFaulty(*n))
	if len(crashes) > dsys.MaxFaulty(*n) {
		fmt.Fprintf(os.Stderr, "warning: %d crashes exceeds f < n/2; termination is not guaranteed\n", len(crashes))
	}

	runners := map[string]conslab.Runner{
		"cec": func(p dsys.Proc, rb *rbcast.Module, v any, opt consensus.Options) consensus.Result {
			return cec.Propose(p, ring.Start(p, ring.Options{}), rb, v, opt)
		},
		"ctc": func(p dsys.Proc, rb *rbcast.Module, v any, opt consensus.Options) consensus.Result {
			return ctc.Propose(p, heartbeat.Start(p, heartbeat.Options{}), rb, v, opt)
		},
		"mrc": func(p dsys.Proc, rb *rbcast.Module, v any, opt consensus.Options) consensus.Result {
			return mrc.Propose(p, omega.StartLeaderBeat(p, omega.Options{}), rb, v, opt)
		},
	}
	names := map[string]string{
		"cec": "◇C consensus over ring ◇C (this paper)",
		"ctc": "Chandra–Toueg ◇S over heartbeat ◇P",
		"mrc": "MR-style Ω consensus over LeaderBeat Ω",
	}

	failed := false
	for _, a := range strings.Split(*algos, ",") {
		a = strings.TrimSpace(a)
		run, ok := runners[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", a)
			os.Exit(2)
		}
		var net network.Network = network.PartiallySynchronous{GST: *gst, Delta: *delta}
		if *loss > 0 {
			net = network.FairLossy{P: *loss, Under: net}
		}
		if *dup > 0 {
			net = network.Duplicating{P: *dup, Under: net}
		}
		res := conslab.Run(conslab.Setup{
			N:       *n,
			Seed:    *seed,
			Net:     net,
			Crashes: crashes,
			Run:     run,
			RunFor:  *runFor,
		})
		fmt.Printf("%s\n", names[a])
		if err := res.Verify(*n); err != nil {
			failed = true
			fmt.Printf("  PROPERTIES VIOLATED: %v\n", err)
		} else {
			fmt.Printf("  all Uniform Consensus properties hold\n")
		}
		for _, id := range dsys.Pids(*n) {
			if d, ok := res.Log.Decided(id); ok {
				fmt.Printf("  %v decided %-6v at %8v in round %d\n", id, d.Value, d.At, d.Round)
			} else if _, crashed := crashes[id]; crashed {
				fmt.Printf("  %v crashed before deciding\n", id)
			} else {
				fmt.Printf("  %v did not decide within the horizon\n", id)
			}
		}
		fmt.Printf("  total protocol messages: %d\n\n", res.Messages.TotalSent())
	}
	if failed {
		os.Exit(1)
	}
}

func parseCrashes(s string, n int) (map[dsys.ProcessID]time.Duration, error) {
	out := map[dsys.ProcessID]time.Duration{}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		var id int
		var at string
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d@%s", &id, &at); err != nil {
			return nil, fmt.Errorf("bad crash spec %q (want id@duration)", part)
		}
		d, err := time.ParseDuration(at)
		if err != nil {
			return nil, fmt.Errorf("bad crash time in %q: %v", part, err)
		}
		if id < 1 || id > n {
			return nil, fmt.Errorf("crash id %d out of range 1..%d", id, n)
		}
		out[dsys.ProcessID(id)] = d
	}
	return out, nil
}
